// silo-lint test fixture: R2 positives — a wall-clock read and a raw
// getenv outside the harness shims.
#include <chrono>
#include <cstdlib>

bool
leaky()
{
    auto now = std::chrono::system_clock::now();
    const char *home = std::getenv("HOME");
    return home != nullptr && now.time_since_epoch().count() > 0;
}
