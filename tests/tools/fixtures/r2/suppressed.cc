// silo-lint test fixture: R2 violation under a reasoned allow().
#include <chrono>

double
shimSeconds()
{
    using namespace std::chrono;
    // silo-lint: allow(ambient-entropy) timing shim fixture: progress display only
    return duration<double>(steady_clock::now().time_since_epoch())
        .count();
}
