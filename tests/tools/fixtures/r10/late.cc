// silo-lint test fixture: R10 — an allowfile() buried below the
// first code of the file still suppresses, but is itself flagged.

int firstCode();
// silo-lint: allowfile(R2) entropy shim declared too late
int seed = srand(9);
