// silo-lint test fixture: R10 suppressed — the placement finding is
// itself granted with a reason.

int firstCode();
// silo-lint: allow(R10) allowfile kept at the bottom so the header comment stays first
// silo-lint: allowfile(R2) entropy shim for the whole file
int seed = srand(13);
