// silo-lint test fixture: R10 — two allowfile() directives granting
// the same rule; the duplicate is flagged and, having lost the race
// to suppress anything, is also reported unused.

// silo-lint: allowfile(R2) whole-file entropy shim
// silo-lint: allowfile(R2) duplicate whole-file grant
int seed = srand(3);
