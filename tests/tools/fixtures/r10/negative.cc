// silo-lint test fixture: R10 negative — one allowfile() at the top
// of the file covering several findings is the intended shape.

// silo-lint: allowfile(R2) entropy shim for this whole fixture
int seed = srand(11);
long tick = time(nullptr);
