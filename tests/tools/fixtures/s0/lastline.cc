int firstCode();
// silo-lint: allow(R1) dangling tail allowance