// silo-lint test fixture: S0 positives — the suppression grammar is
// itself linted.

// silo-lint: allow(nondet-iteration)
int missingReason();

// silo-lint: allow(bogus-rule) some reason text
int unknownRule();

// silo-lint: allow(ambient-entropy) nothing on the next line triggers this
int unusedSuppression();
