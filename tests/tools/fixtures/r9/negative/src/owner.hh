// silo-lint test fixture: R9 negative — both stats reach the export.

#ifndef FIX_R9_NEG_OWNER_HH
#define FIX_R9_NEG_OWNER_HH

struct Owner
{
    void wire();

    stats::Distribution _lat{"latency", "per-op latency"};
    stats::StatGroup _grp;
};

#endif
