// silo-lint test fixture: R9 negative — the registration site.

#include "owner.hh"

void
Owner::wire()
{
    _grp.addDistribution(_lat);
    registry().add("owner", _grp);
}
