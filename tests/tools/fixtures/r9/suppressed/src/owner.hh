// silo-lint test fixture: R9 suppressed — a deliberately unexported
// scratch histogram, granted with a reason.

#ifndef FIX_R9_SUP_OWNER_HH
#define FIX_R9_SUP_OWNER_HH

struct Owner
{
    // silo-lint: allow(R9) scratch histogram, read directly by the harness test
    stats::Distribution _scratch{"scratch", "local-only histogram"};
};

#endif
