// silo-lint test fixture: R9 positives — a Distribution that never
// reaches addDistribution() and a StatGroup nothing populates or
// exports.

#ifndef FIX_R9_OWNER_HH
#define FIX_R9_OWNER_HH

struct Owner
{
    stats::Distribution _lat{"latency", "per-op latency"};
    stats::StatGroup _grp;
};

#endif
