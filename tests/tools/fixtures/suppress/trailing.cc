// silo-lint: allow(R2) reason text with trailing blanks   	
int seed = srand(17);
