int before();
// silo-lint: allow(R2) windows line endings still parse
int seed = srand(5);
