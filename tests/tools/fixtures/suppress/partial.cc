// silo-lint test fixture: a multi-rule allow list where only one
// listed rule fires — the other entry is reported unused (S0).

// silo-lint: allow(R1, R2) only the entropy half actually fires
int seed = srand(21);
