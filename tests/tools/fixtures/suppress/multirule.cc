// silo-lint test fixture: one allow() granting two rules at once —
// the range-for trips R1 and the rand() on the same line trips R2.

void
mix(const std::unordered_map<int, int> &m)
{
    // silo-lint: allow(R1, R2) deliberate joint fixture for the multi-rule grammar
    for (const auto &kv : m) { consume(kv.first + rand()); }
}
