// silo-lint test fixture: R1 negatives — point lookups and an end()
// sentinel comparison are order-neutral and must not be flagged.
#include <unordered_map>
#include <vector>

int
lookups(const std::unordered_map<int, int> &counts,
        const std::vector<int> &keys)
{
    int sum = 0;
    for (int k : keys) {
        auto it = counts.find(k);
        if (it != counts.end())
            sum += it->second;
    }
    return sum;
}
