// silo-lint test fixture: R1 positives — a range-for and an explicit
// iterator walk over an unordered container. Never compiled.
#include <unordered_map>

int
sumValues(const std::unordered_map<int, int> &counts)
{
    int sum = 0;
    for (const auto &[key, value] : counts)
        sum += value;
    auto it = counts.begin();
    sum += it->second;
    return sum;
}
