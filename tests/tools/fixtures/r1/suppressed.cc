// silo-lint test fixture: R1 violation under a reasoned allow().
#include <unordered_map>

int
keyCount(const std::unordered_map<int, int> &counts)
{
    int n = 0;
    // silo-lint: allow(nondet-iteration) order-insensitive count accumulation
    for (const auto &[key, value] : counts)
        n += 1;
    return n;
}
