// silo-lint test fixture: R3 code-side violation under a reasoned
// allow() comment.
#include <string>

std::string
knobName()
{
    // silo-lint: allow(env-doc-parity) fixture-only knob, deliberately undocumented
    return "SILO_UNDOCUMENTED_KNOB";
}
