// silo-lint test fixture: R3 negative — every referenced knob is
// documented and every documented knob is referenced.
#include <string>

std::string
knobName()
{
    return "SILO_GOOD_KNOB";
}
