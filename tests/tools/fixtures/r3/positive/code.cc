// silo-lint test fixture: R3 positive — references a knob the fixture
// README never documents (and the README documents an orphan knob).
#include <string>

std::string
knobName()
{
    return "SILO_UNDOCUMENTED_KNOB";
}
