// silo-lint test fixture: R5 positives — a name violating the
// silo-stats-v1 key grammar and a duplicate registration.
namespace stats
{
struct Scalar
{
    Scalar(const char *name);
};
} // namespace stats

stats::Scalar badName{"BadName"};
stats::Scalar dupA{"tx_committed"};
stats::Scalar dupB{"tx_committed"};
