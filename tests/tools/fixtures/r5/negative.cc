// silo-lint test fixture: R5 negative — unique, schema-valid names.
namespace stats
{
struct Scalar
{
    Scalar(const char *name);
};
} // namespace stats

stats::Scalar txCommitted{"tx_committed"};
stats::Scalar mediaWrites{"media_word_writes_2"};
