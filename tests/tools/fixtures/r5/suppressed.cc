// silo-lint test fixture: R5 violation under a reasoned allow().
namespace stats
{
struct Scalar
{
    Scalar(const char *name);
};
} // namespace stats

// silo-lint: allow(stats-names) fixture: legacy dashboard key kept verbatim
stats::Scalar legacy{"Legacy-Key"};
