// silo-lint test fixture: R7 negatives — this-captures, by-value
// captures and member references survive the frame, so they stay
// clean.

struct Engine
{
    int count = 0;
    long _total = 0;

    void
    arm(EventQueue &q)
    {
        q.schedule(5, [this] { ++count; });
        q.schedule(6, [&_total] { _total += 1; });
        int snapshot = count;
        q.schedule(7, [snapshot] { consume(snapshot); });
    }
};
