// silo-lint test fixture: R7 suppressed — a by-reference local
// capture granted because the queue is drained inside the same frame.

void
drainNow(EventQueue &q)
{
    long hits = 0;
    // silo-lint: allow(callback-lifetime) q.drain() below completes every event before hits dies
    q.schedule(1, [&hits] { ++hits; });
    q.drain();
}
