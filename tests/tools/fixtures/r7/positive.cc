// silo-lint test fixture: R7 positives — schedule() lambdas capture a
// function-local and a parameter by reference; both frames are gone by
// the time the event queue dispatches.

void
armCounter(EventQueue &q)
{
    int pending = 0;
    q.schedule(5, [&pending] { ++pending; });
}

void
armBudget(EventQueue &q, int budget)
{
    q.scheduleAfter(7, [&budget] { budget -= 1; });
}
