// silo-lint test fixture: R8 positives — float accumulation over an
// unordered container (the range-for also trips R1), over a
// worker-indexed loop, and inside a parallelFor lambda.

void
tally(const std::unordered_map<int, double> &weights, unsigned jobs,
      Sweep &sweep)
{
    double total = 0.0;
    for (const auto &kv : weights)
        total += kv.second;

    double perWorker = 0.0;
    for (unsigned w = 0; w < jobs; ++w)
        perWorker += partial(w);

    double acc = 0.0;
    sweep.parallelFor(8, [&acc](unsigned i) { acc += load(i); });
}
