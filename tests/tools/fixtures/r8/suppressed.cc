// silo-lint test fixture: R8 suppressed — a worker-loop float sum
// granted because the partials are re-combined in a fixed order.

void
weigh(const std::vector<double> &parts, unsigned jobs)
{
    double sum = 0.0;
    for (unsigned w = 0; w < jobs; ++w) {
        // silo-lint: allow(R8) partials are sorted and re-summed in fixed order before reporting
        sum += parts[w];
    }
}
