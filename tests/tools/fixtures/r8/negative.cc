// silo-lint test fixture: R8 negatives — float accumulation over an
// ordered container and integer accumulation over a worker loop are
// both deterministic.

void
safeSums(const std::vector<double> &xs, unsigned jobs)
{
    double ordered = 0.0;
    for (double x : xs)
        ordered += x;

    long count = 0;
    for (unsigned w = 0; w < jobs; ++w)
        count += 1;
}
