// silo-lint test fixture: R6 suppressed — an upward include granted
// with a reason while a refactor is in flight.

#ifndef FIX_R6_PEEK_HH
#define FIX_R6_PEEK_HH

// silo-lint: allow(R6) transitional — the checker interface moves down into sim next release
#include "check/checker.hh"

#endif
