// silo-lint test fixture: R6 negative — nvm sits directly on sim.

#ifndef FIX_R6_DEV_HH
#define FIX_R6_DEV_HH

#include "sim/types.hh"

#endif
