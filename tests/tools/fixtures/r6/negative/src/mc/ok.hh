// silo-lint test fixture: R6 negative — downward includes along the
// module DAG stay clean.

#ifndef FIX_R6_OK_HH
#define FIX_R6_OK_HH

#include "nvm/dev.hh"
#include "sim/types.hh"

#endif
