// silo-lint test fixture: R6 negative — the bottom of the DAG.

#ifndef FIX_R6_TYPES_HH
#define FIX_R6_TYPES_HH

using Word = unsigned long long;

#endif
