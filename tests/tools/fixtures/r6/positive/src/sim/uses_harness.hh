// silo-lint test fixture: R6 positive — a sim-layer header reaching
// up into the harness, the worst inversion the module DAG forbids.

#ifndef FIX_R6_USES_HARNESS_HH
#define FIX_R6_USES_HARNESS_HH

#include "harness/sweep.hh"

#endif
