// silo-lint test fixture: R6 positive — one half of a same-module
// include cycle (the layer table alone cannot see it).

#ifndef FIX_R6_A_HH
#define FIX_R6_A_HH

#include "sim/b.hh"

#endif
