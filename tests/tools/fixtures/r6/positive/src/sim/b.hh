// silo-lint test fixture: R6 positive — the other half of the cycle.

#ifndef FIX_R6_B_HH
#define FIX_R6_B_HH

#include "sim/a.hh"

#endif
