// silo-lint test fixture: R4 violation under a reasoned allow().
struct Queue
{
    template <typename F>
    void schedule(long when, F &&fn);
};

void
arm(Queue &q)
{
    int local = 0;
    // silo-lint: allow(handler-hygiene) fixture: callback runs before arm() returns
    q.schedule(10, [&] { ++local; });
}
