// silo-lint test fixture: R4 positives — a negative delay (Tick is
// unsigned and wraps) and a default-capture deferred callback.
struct Queue
{
    template <typename F>
    void schedule(long when, F &&fn);
};

void
arm(Queue &q)
{
    int local = 0;
    q.schedule(-5, [&local] { ++local; });
    q.schedule(10, [&] { ++local; });
}
