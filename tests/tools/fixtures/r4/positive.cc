// silo-lint test fixture: R4 positives — a negative delay (Tick is
// unsigned and wraps) and a default-capture deferred callback. The
// captured counter lives at file scope so only R4 fires (a local
// would also trip R7 callback-lifetime).
struct Queue
{
    template <typename F>
    void schedule(long when, F &&fn);
};

int counter = 0;

void
arm(Queue &q)
{
    q.schedule(-5, [&counter] { ++counter; });
    q.schedule(10, [&] { ++counter; });
}
