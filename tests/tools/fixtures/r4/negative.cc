// silo-lint test fixture: R4 negative — explicit captures and a
// non-negative delay. The counter lives at file scope so the
// explicit by-ref capture is lifetime-safe (no R7 either).
struct Queue
{
    template <typename F>
    void schedule(long when, F &&fn);
};

int counter = 0;

void
arm(Queue &q)
{
    q.schedule(10, [&counter] { ++counter; });
}
