// silo-lint test fixture: R4 negative — explicit captures and a
// non-negative delay.
struct Queue
{
    template <typename F>
    void schedule(long when, F &&fn);
};

void
arm(Queue &q)
{
    int local = 0;
    q.schedule(10, [&local] { ++local; });
}
