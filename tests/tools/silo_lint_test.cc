/**
 * @file
 * silo-lint's own tests: every rule R1–R10 gets a positive fixture
 * (violations found, golden silo-lint-v1 JSON byte-matched), a
 * negative fixture (clean code stays clean) and a suppressed fixture
 * (a reasoned allow() turns the error into a counted suppression),
 * plus S0 coverage of the suppression grammar itself (multi-rule
 * lists, CRLF endings, trailing-whitespace reasons, last-line
 * directives), SARIF 2.1.0 golden output, the --changed finding
 * filter, and — the gate that matters day-to-day — a self-run
 * asserting the repository lints clean with zero unsuppressed
 * findings.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "silo-lint/driver.hh"

namespace silo::lint
{
namespace
{

const std::string fixtures =
    std::string(SILO_TEST_DIR) + "/tools/fixtures";
const std::string goldens =
    std::string(SILO_TEST_DIR) + "/tools/golden";

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/** Lint one fixture directory restricted to the named files. */
Result
lintFixture(const std::string &rel_root,
            std::vector<std::string> files)
{
    Options opts;
    opts.root = fixtures + "/" + rel_root;
    opts.files = std::move(files);
    return runLint(opts);
}

/** Compare a fixture result against its checked-in golden JSON. */
void
expectMatchesGolden(const Result &result, const std::string &name)
{
    std::string golden = slurp(goldens + "/" + name + ".json");
    ASSERT_FALSE(golden.empty()) << "missing golden " << name;
    EXPECT_EQ(toJson(result), golden) << "golden " << name
                                      << " out of date";
}

/** Same, for the SARIF 2.1.0 serialization of the result. */
void
expectMatchesSarifGolden(const Result &result, const std::string &name)
{
    std::string golden = slurp(goldens + "/" + name + ".sarif");
    ASSERT_FALSE(golden.empty()) << "missing SARIF golden " << name;
    EXPECT_EQ(toSarif(result), golden) << "SARIF golden " << name
                                       << " out of date";
}

TEST(SiloLintRules, CatalogueCoversR1ToR10)
{
    ASSERT_EQ(ruleCatalogue().size(), 10u);
    EXPECT_EQ(slugForRule("R1"), "nondet-iteration");
    EXPECT_EQ(slugForRule("nondet-iteration"), "nondet-iteration");
    EXPECT_EQ(slugForRule("R5"), "stats-names");
    EXPECT_EQ(slugForRule("R6"), "module-layering");
    EXPECT_EQ(slugForRule("R7"), "callback-lifetime");
    EXPECT_EQ(slugForRule("R8"), "float-determinism");
    EXPECT_EQ(slugForRule("R9"), "stats-registration");
    EXPECT_EQ(slugForRule("R10"), "suppression-hygiene");
    EXPECT_EQ(slugForRule("suppression-hygiene"),
              "suppression-hygiene");
    EXPECT_EQ(slugForRule("not-a-rule"), "");
}

TEST(SiloLintR1, PositiveFindsRangeForAndIteratorWalk)
{
    Result r = lintFixture("r1", {"positive.cc"});
    EXPECT_EQ(r.errors, 2u);
    EXPECT_EQ(r.suppressed, 0u);
    for (const Finding &f : r.findings)
        EXPECT_EQ(f.rule, "nondet-iteration");
    expectMatchesGolden(r, "r1_positive");
}

TEST(SiloLintR1, NegativeLookupAndSentinelStayClean)
{
    Result r = lintFixture("r1", {"negative.cc"});
    EXPECT_EQ(r.errors, 0u);
    EXPECT_TRUE(r.findings.empty());
}

TEST(SiloLintR1, SuppressedCountsButDoesNotFail)
{
    Result r = lintFixture("r1", {"suppressed.cc"});
    EXPECT_EQ(r.errors, 0u);
    ASSERT_EQ(r.suppressed, 1u);
    EXPECT_TRUE(r.findings[0].suppressed);
    EXPECT_EQ(r.findings[0].reason,
              "order-insensitive count accumulation");
    expectMatchesGolden(r, "r1_suppressed");
}

TEST(SiloLintR2, PositiveFindsWallClockAndRawGetenv)
{
    Result r = lintFixture("r2", {"positive.cc"});
    EXPECT_EQ(r.errors, 2u);
    expectMatchesGolden(r, "r2_positive");
}

TEST(SiloLintR2, NegativeDeterministicCodeStaysClean)
{
    Result r = lintFixture("r2", {"negative.cc"});
    EXPECT_EQ(r.errors, 0u);
    EXPECT_TRUE(r.findings.empty());
}

TEST(SiloLintR2, SuppressedShimIsAllowed)
{
    Result r = lintFixture("r2", {"suppressed.cc"});
    EXPECT_EQ(r.errors, 0u);
    EXPECT_EQ(r.suppressed, 1u);
}

TEST(SiloLintR3, PositiveFlagsBothDirections)
{
    Result r = lintFixture("r3/positive", {"code.cc"});
    EXPECT_EQ(r.errors, 2u);
    bool undocumented = false, orphan = false;
    for (const Finding &f : r.findings) {
        EXPECT_EQ(f.rule, "env-doc-parity");
        // Match without the SILO_ prefix so these literals don't
        // register as env-var references in our own self-run.
        if (f.message.find("UNDOCUMENTED_KNOB") != std::string::npos)
            undocumented = true;
        if (f.message.find("ORPHAN_KNOB") != std::string::npos)
            orphan = true;
    }
    EXPECT_TRUE(undocumented) << "code->doc direction missing";
    EXPECT_TRUE(orphan) << "doc->code direction missing";
    expectMatchesGolden(r, "r3_positive");
}

TEST(SiloLintR3, NegativeParityStaysClean)
{
    Result r = lintFixture("r3/negative", {"code.cc"});
    EXPECT_EQ(r.errors, 0u);
    EXPECT_TRUE(r.findings.empty());
}

TEST(SiloLintR3, SuppressedOnBothSides)
{
    // Code side via the allow() comment, doc side via the text
    // marker (Markdown has no C++ comment grammar).
    Result r = lintFixture("r3/suppressed", {"code.cc"});
    EXPECT_EQ(r.errors, 0u);
    EXPECT_EQ(r.suppressed, 2u);
    expectMatchesGolden(r, "r3_suppressed");
}

TEST(SiloLintR4, PositiveFindsNegativeDelayAndDefaultCapture)
{
    Result r = lintFixture("r4", {"positive.cc"});
    EXPECT_EQ(r.errors, 2u);
    bool negative = false, capture = false;
    for (const Finding &f : r.findings) {
        EXPECT_EQ(f.rule, "handler-hygiene");
        if (f.message.find("negative delay") != std::string::npos)
            negative = true;
        if (f.message.find("default capture") != std::string::npos)
            capture = true;
    }
    EXPECT_TRUE(negative);
    EXPECT_TRUE(capture);
    expectMatchesGolden(r, "r4_positive");
}

TEST(SiloLintR4, NegativeExplicitCaptureStaysClean)
{
    Result r = lintFixture("r4", {"negative.cc"});
    EXPECT_EQ(r.errors, 0u);
    EXPECT_TRUE(r.findings.empty());
}

TEST(SiloLintR4, SuppressedDefaultCaptureIsAllowed)
{
    Result r = lintFixture("r4", {"suppressed.cc"});
    EXPECT_EQ(r.errors, 0u);
    EXPECT_EQ(r.suppressed, 1u);
}

TEST(SiloLintR5, PositiveFindsBadNameAndDuplicate)
{
    Result r = lintFixture("r5", {"positive.cc"});
    EXPECT_EQ(r.errors, 2u);
    bool bad = false, dup = false;
    for (const Finding &f : r.findings) {
        EXPECT_EQ(f.rule, "stats-names");
        if (f.message.find("not a valid silo-stats-v1 key") !=
            std::string::npos)
            bad = true;
        if (f.message.find("duplicate stat name") != std::string::npos)
            dup = true;
    }
    EXPECT_TRUE(bad);
    EXPECT_TRUE(dup);
    expectMatchesGolden(r, "r5_positive");
}

TEST(SiloLintR5, NegativeUniqueValidNamesStayClean)
{
    Result r = lintFixture("r5", {"negative.cc"});
    EXPECT_EQ(r.errors, 0u);
    EXPECT_TRUE(r.findings.empty());
}

TEST(SiloLintR5, SuppressedLegacyNameIsAllowed)
{
    Result r = lintFixture("r5", {"suppressed.cc"});
    EXPECT_EQ(r.errors, 0u);
    EXPECT_EQ(r.suppressed, 1u);
}

TEST(SiloLintS0, SuppressionGrammarIsItselfLinted)
{
    Result r = lintFixture("s0", {"positive.cc"});
    EXPECT_EQ(r.errors, 3u);
    int missing_reason = 0, unknown_rule = 0, unused = 0;
    for (const Finding &f : r.findings) {
        EXPECT_EQ(f.code, "S0");
        if (f.message.find("must carry a reason") != std::string::npos)
            ++missing_reason;
        if (f.message.find("unknown rule") != std::string::npos)
            ++unknown_rule;
        if (f.message.find("unused suppression") != std::string::npos)
            ++unused;
    }
    EXPECT_EQ(missing_reason, 1);
    EXPECT_EQ(unknown_rule, 1);
    EXPECT_EQ(unused, 1);
    expectMatchesGolden(r, "s0_positive");
}

TEST(SiloLintR6, PositiveFlagsUpwardIncludeAndCycle)
{
    Result r = lintFixture("r6/positive",
                           {"src/sim/uses_harness.hh", "src/sim/a.hh",
                            "src/sim/b.hh"});
    EXPECT_EQ(r.errors, 2u);
    bool upward = false, cycle = false;
    for (const Finding &f : r.findings) {
        EXPECT_EQ(f.rule, "module-layering");
        if (f.message.find("may not include") != std::string::npos)
            upward = true;
        if (f.message.find("include cycle") != std::string::npos)
            cycle = true;
    }
    EXPECT_TRUE(upward) << "sim -> harness include not flagged";
    EXPECT_TRUE(cycle) << "a.hh <-> b.hh cycle not flagged";
    expectMatchesGolden(r, "r6_positive");
}

TEST(SiloLintR6, NegativeDownwardIncludesStayClean)
{
    Result r = lintFixture("r6/negative",
                           {"src/mc/ok.hh", "src/nvm/dev.hh",
                            "src/sim/types.hh"});
    EXPECT_EQ(r.errors, 0u);
    EXPECT_TRUE(r.findings.empty());
}

TEST(SiloLintR6, SuppressedTransitionalIncludeIsAllowed)
{
    Result r = lintFixture("r6/suppressed", {"src/sim/peek.hh"});
    EXPECT_EQ(r.errors, 0u);
    ASSERT_EQ(r.suppressed, 1u);
    EXPECT_EQ(r.findings[0].reason,
              "transitional — the checker interface moves down into "
              "sim next release");
}

TEST(SiloLintR7, PositiveFindsLocalAndParamByRefCaptures)
{
    Result r = lintFixture("r7", {"positive.cc"});
    EXPECT_EQ(r.errors, 2u);
    bool local = false, param = false;
    for (const Finding &f : r.findings) {
        EXPECT_EQ(f.rule, "callback-lifetime");
        if (f.message.find("'pending'") != std::string::npos)
            local = true;
        if (f.message.find("'budget'") != std::string::npos)
            param = true;
    }
    EXPECT_TRUE(local) << "local captured by ref not flagged";
    EXPECT_TRUE(param) << "parameter captured by ref not flagged";
    expectMatchesGolden(r, "r7_positive");
}

TEST(SiloLintR7, NegativeMemberAndByValueCapturesStayClean)
{
    Result r = lintFixture("r7", {"negative.cc"});
    EXPECT_EQ(r.errors, 0u);
    EXPECT_TRUE(r.findings.empty());
}

TEST(SiloLintR7, SuppressedDrainedQueueIsAllowed)
{
    Result r = lintFixture("r7", {"suppressed.cc"});
    EXPECT_EQ(r.errors, 0u);
    ASSERT_EQ(r.suppressed, 1u);
    EXPECT_EQ(r.findings[0].reason,
              "q.drain() below completes every event before hits dies");
}

TEST(SiloLintR8, PositiveFindsUnorderedWorkerAndParallelSums)
{
    Result r = lintFixture("r8", {"positive.cc"});
    // The unordered range-for also trips R1 — both rules report.
    EXPECT_EQ(r.errors, 4u);
    int r8 = 0;
    for (const Finding &f : r.findings)
        if (f.rule == "float-determinism")
            ++r8;
    EXPECT_EQ(r8, 3) << "expected unordered + worker-loop + "
                        "parallel-callback accumulations";
    expectMatchesGolden(r, "r8_positive");
}

TEST(SiloLintR8, NegativeOrderedAndIntegerSumsStayClean)
{
    Result r = lintFixture("r8", {"negative.cc"});
    EXPECT_EQ(r.errors, 0u);
    EXPECT_TRUE(r.findings.empty());
}

TEST(SiloLintR8, SuppressedSortedResumIsAllowed)
{
    Result r = lintFixture("r8", {"suppressed.cc"});
    EXPECT_EQ(r.errors, 0u);
    EXPECT_EQ(r.suppressed, 1u);
}

TEST(SiloLintR9, PositiveFindsUnregisteredDistributionAndGroup)
{
    Result r = lintFixture("r9/positive", {"src/owner.hh"});
    EXPECT_EQ(r.errors, 2u);
    bool dist = false, group = false;
    for (const Finding &f : r.findings) {
        EXPECT_EQ(f.rule, "stats-registration");
        if (f.message.find("addDistribution") != std::string::npos)
            dist = true;
        if (f.message.find("StatGroup") != std::string::npos)
            group = true;
    }
    EXPECT_TRUE(dist);
    EXPECT_TRUE(group);
    expectMatchesGolden(r, "r9_positive");
}

TEST(SiloLintR9, NegativeRegisteredAcrossFilesStaysClean)
{
    // The declaration lives in the header; the registration lives in
    // the .cc — R9 is a corpus rule and must see across files.
    Result r = lintFixture("r9/negative",
                           {"src/owner.hh", "src/owner.cc"});
    EXPECT_EQ(r.errors, 0u);
    EXPECT_TRUE(r.findings.empty());
}

TEST(SiloLintR9, SuppressedScratchHistogramIsAllowed)
{
    Result r = lintFixture("r9/suppressed", {"src/owner.hh"});
    EXPECT_EQ(r.errors, 0u);
    EXPECT_EQ(r.suppressed, 1u);
}

TEST(SiloLintR10, DuplicateGrantIsFlagged)
{
    Result r = lintFixture("r10", {"dup.cc"});
    EXPECT_EQ(r.errors, 2u);   // duplicate grant + unused directive
    EXPECT_EQ(r.suppressed, 1u);
    bool dup = false, unused = false;
    for (const Finding &f : r.findings) {
        if (f.message.find("duplicate suppression") !=
            std::string::npos) {
            EXPECT_EQ(f.rule, "suppression-hygiene");
            dup = true;
        }
        if (f.message.find("unused suppression") != std::string::npos)
            unused = true;
    }
    EXPECT_TRUE(dup);
    EXPECT_TRUE(unused);
    expectMatchesGolden(r, "r10_dup");
}

TEST(SiloLintR10, LateAllowfileIsFlaggedButStillSuppresses)
{
    Result r = lintFixture("r10", {"late.cc"});
    EXPECT_EQ(r.errors, 1u);
    EXPECT_EQ(r.suppressed, 1u);
    ASSERT_FALSE(r.findings.empty());
    bool placement = false;
    for (const Finding &f : r.findings)
        if (f.message.find("must appear before the first code") !=
            std::string::npos)
            placement = true;
    EXPECT_TRUE(placement);
}

TEST(SiloLintR10, NegativeTopAllowfileStaysClean)
{
    Result r = lintFixture("r10", {"negative.cc"});
    EXPECT_EQ(r.errors, 0u);
    EXPECT_EQ(r.suppressed, 2u);
}

TEST(SiloLintR10, PlacementFindingIsItselfSuppressible)
{
    Result r = lintFixture("r10", {"suppressed.cc"});
    EXPECT_EQ(r.errors, 0u);
    EXPECT_EQ(r.suppressed, 2u);   // the R10 finding and the R2 one
}

TEST(SiloLintSuppress, MultiRuleAllowCoversBothRules)
{
    Result r = lintFixture("suppress", {"multirule.cc"});
    EXPECT_EQ(r.errors, 0u);
    ASSERT_EQ(r.suppressed, 2u);   // R1 and R2 on the same line
    for (const Finding &f : r.findings) {
        EXPECT_TRUE(f.suppressed);
        EXPECT_EQ(f.reason,
                  "deliberate joint fixture for the multi-rule "
                  "grammar");
    }
}

TEST(SiloLintSuppress, PartiallyUsedListReportsTheUnusedRule)
{
    Result r = lintFixture("suppress", {"partial.cc"});
    EXPECT_EQ(r.errors, 1u);
    EXPECT_EQ(r.suppressed, 1u);
    bool unused_r1 = false;
    for (const Finding &f : r.findings)
        if (!f.suppressed) {
            EXPECT_EQ(f.code, "S0");
            if (f.message.find("unused suppression for R1") !=
                std::string::npos)
                unused_r1 = true;
        }
    EXPECT_TRUE(unused_r1)
        << "the unfired R1 entry must be reported individually";
}

TEST(SiloLintSuppress, CrlfEndingsParseAndReasonIsClean)
{
    Result r = lintFixture("suppress", {"crlf.cc"});
    EXPECT_EQ(r.errors, 0u);
    ASSERT_EQ(r.suppressed, 1u);
    // The \r must not leak into the recorded reason.
    EXPECT_EQ(r.findings[0].reason,
              "windows line endings still parse");
}

TEST(SiloLintSuppress, TrailingWhitespaceReasonIsTrimmed)
{
    Result r = lintFixture("suppress", {"trailing.cc"});
    EXPECT_EQ(r.errors, 0u);
    ASSERT_EQ(r.suppressed, 1u);
    EXPECT_EQ(r.findings[0].reason,
              "reason text with trailing blanks");
}

TEST(SiloLintS0, AllowOnLastLineWithoutNewlineIsUnused)
{
    Result r = lintFixture("s0", {"lastline.cc"});
    EXPECT_EQ(r.errors, 1u);
    EXPECT_EQ(r.suppressed, 0u);
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].code, "S0");
    EXPECT_NE(r.findings[0].message.find("unused suppression for R1"),
              std::string::npos);
}

TEST(SiloLintChanged, OnlyFindingsInChangedFilesAreReported)
{
    Options opts;
    opts.root = fixtures + "/r1";
    opts.files = {"positive.cc", "negative.cc"};
    opts.changedOnly = true;
    opts.changedFiles = {"negative.cc"};
    Result r = runLint(opts);
    EXPECT_EQ(r.errors, 0u);
    EXPECT_TRUE(r.findings.empty());
    EXPECT_EQ(r.filesScanned, 2u)
        << "--changed must still scan the full corpus";

    opts.changedFiles = {"positive.cc"};
    r = runLint(opts);
    EXPECT_EQ(r.errors, 2u);
}

TEST(SiloLintJson, SchemaAndEscaping)
{
    Result r = lintFixture("r1", {"positive.cc"});
    std::string json = toJson(r);
    EXPECT_NE(json.find("\"schema\": \"silo-lint-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
    EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
}

TEST(SiloLintSarif, StructureRulesAndSuppressions)
{
    Result r = lintFixture("r7", {"positive.cc"});
    std::string sarif = toSarif(r);
    EXPECT_NE(sarif.find("sarif-2.1.0"), std::string::npos);
    EXPECT_NE(sarif.find("\"ruleId\": \"R7\""), std::string::npos);
    EXPECT_NE(sarif.find("\"startLine\""), std::string::npos);
    // An all-error run carries no suppressions blocks.
    EXPECT_EQ(sarif.find("\"suppressions\""), std::string::npos);
    expectMatchesSarifGolden(r, "r7_positive");

    Result s = lintFixture("r7", {"suppressed.cc"});
    std::string ssarif = toSarif(s);
    EXPECT_NE(ssarif.find("\"suppressions\""), std::string::npos);
    EXPECT_NE(ssarif.find("\"kind\": \"inSource\""),
              std::string::npos);
    expectMatchesSarifGolden(s, "r7_suppressed");
}

/**
 * The gate: the repository itself must lint clean. Any new finding is
 * either a real determinism/persistency hazard to fix or needs an
 * explicit allow() carrying a reason.
 */
TEST(SiloLintSelfRun, RepositoryHasZeroUnsuppressedFindings)
{
    Options opts;
    opts.root = SILO_REPO_ROOT;
    Result r = runLint(opts);
    EXPECT_GE(r.filesScanned, 100u)
        << "self-run scanned suspiciously few files — wrong root?";
    for (const Finding &f : r.findings) {
        if (!f.suppressed)
            ADD_FAILURE() << f.file << ":" << f.line << " [" << f.code
                          << " " << f.rule << "] " << f.message;
    }
    EXPECT_EQ(r.errors, 0u);
}

} // namespace
} // namespace silo::lint
