/**
 * @file
 * silo-lint's own tests: every rule R1–R5 gets a positive fixture
 * (violations found, golden silo-lint-v1 JSON byte-matched), a
 * negative fixture (clean code stays clean) and a suppressed fixture
 * (a reasoned allow() turns the error into a counted suppression),
 * plus S0 coverage of the suppression grammar itself, and — the gate
 * that matters day-to-day — a self-run asserting the repository lints
 * clean with zero unsuppressed findings.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "silo-lint/driver.hh"

namespace silo::lint
{
namespace
{

const std::string fixtures =
    std::string(SILO_TEST_DIR) + "/tools/fixtures";
const std::string goldens =
    std::string(SILO_TEST_DIR) + "/tools/golden";

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/** Lint one fixture directory restricted to the named files. */
Result
lintFixture(const std::string &rel_root,
            std::vector<std::string> files)
{
    Options opts;
    opts.root = fixtures + "/" + rel_root;
    opts.files = std::move(files);
    return runLint(opts);
}

/** Compare a fixture result against its checked-in golden JSON. */
void
expectMatchesGolden(const Result &result, const std::string &name)
{
    std::string golden = slurp(goldens + "/" + name + ".json");
    ASSERT_FALSE(golden.empty()) << "missing golden " << name;
    EXPECT_EQ(toJson(result), golden) << "golden " << name
                                      << " out of date";
}

TEST(SiloLintRules, CatalogueCoversR1ToR5)
{
    ASSERT_EQ(ruleCatalogue().size(), 5u);
    EXPECT_EQ(slugForRule("R1"), "nondet-iteration");
    EXPECT_EQ(slugForRule("nondet-iteration"), "nondet-iteration");
    EXPECT_EQ(slugForRule("R5"), "stats-names");
    EXPECT_EQ(slugForRule("not-a-rule"), "");
}

TEST(SiloLintR1, PositiveFindsRangeForAndIteratorWalk)
{
    Result r = lintFixture("r1", {"positive.cc"});
    EXPECT_EQ(r.errors, 2u);
    EXPECT_EQ(r.suppressed, 0u);
    for (const Finding &f : r.findings)
        EXPECT_EQ(f.rule, "nondet-iteration");
    expectMatchesGolden(r, "r1_positive");
}

TEST(SiloLintR1, NegativeLookupAndSentinelStayClean)
{
    Result r = lintFixture("r1", {"negative.cc"});
    EXPECT_EQ(r.errors, 0u);
    EXPECT_TRUE(r.findings.empty());
}

TEST(SiloLintR1, SuppressedCountsButDoesNotFail)
{
    Result r = lintFixture("r1", {"suppressed.cc"});
    EXPECT_EQ(r.errors, 0u);
    ASSERT_EQ(r.suppressed, 1u);
    EXPECT_TRUE(r.findings[0].suppressed);
    EXPECT_EQ(r.findings[0].reason,
              "order-insensitive count accumulation");
    expectMatchesGolden(r, "r1_suppressed");
}

TEST(SiloLintR2, PositiveFindsWallClockAndRawGetenv)
{
    Result r = lintFixture("r2", {"positive.cc"});
    EXPECT_EQ(r.errors, 2u);
    expectMatchesGolden(r, "r2_positive");
}

TEST(SiloLintR2, NegativeDeterministicCodeStaysClean)
{
    Result r = lintFixture("r2", {"negative.cc"});
    EXPECT_EQ(r.errors, 0u);
    EXPECT_TRUE(r.findings.empty());
}

TEST(SiloLintR2, SuppressedShimIsAllowed)
{
    Result r = lintFixture("r2", {"suppressed.cc"});
    EXPECT_EQ(r.errors, 0u);
    EXPECT_EQ(r.suppressed, 1u);
}

TEST(SiloLintR3, PositiveFlagsBothDirections)
{
    Result r = lintFixture("r3/positive", {"code.cc"});
    EXPECT_EQ(r.errors, 2u);
    bool undocumented = false, orphan = false;
    for (const Finding &f : r.findings) {
        EXPECT_EQ(f.rule, "env-doc-parity");
        // Match without the SILO_ prefix so these literals don't
        // register as env-var references in our own self-run.
        if (f.message.find("UNDOCUMENTED_KNOB") != std::string::npos)
            undocumented = true;
        if (f.message.find("ORPHAN_KNOB") != std::string::npos)
            orphan = true;
    }
    EXPECT_TRUE(undocumented) << "code->doc direction missing";
    EXPECT_TRUE(orphan) << "doc->code direction missing";
    expectMatchesGolden(r, "r3_positive");
}

TEST(SiloLintR3, NegativeParityStaysClean)
{
    Result r = lintFixture("r3/negative", {"code.cc"});
    EXPECT_EQ(r.errors, 0u);
    EXPECT_TRUE(r.findings.empty());
}

TEST(SiloLintR3, SuppressedOnBothSides)
{
    // Code side via the allow() comment, doc side via the text
    // marker (Markdown has no C++ comment grammar).
    Result r = lintFixture("r3/suppressed", {"code.cc"});
    EXPECT_EQ(r.errors, 0u);
    EXPECT_EQ(r.suppressed, 2u);
    expectMatchesGolden(r, "r3_suppressed");
}

TEST(SiloLintR4, PositiveFindsNegativeDelayAndDefaultCapture)
{
    Result r = lintFixture("r4", {"positive.cc"});
    EXPECT_EQ(r.errors, 2u);
    bool negative = false, capture = false;
    for (const Finding &f : r.findings) {
        EXPECT_EQ(f.rule, "handler-hygiene");
        if (f.message.find("negative delay") != std::string::npos)
            negative = true;
        if (f.message.find("default capture") != std::string::npos)
            capture = true;
    }
    EXPECT_TRUE(negative);
    EXPECT_TRUE(capture);
    expectMatchesGolden(r, "r4_positive");
}

TEST(SiloLintR4, NegativeExplicitCaptureStaysClean)
{
    Result r = lintFixture("r4", {"negative.cc"});
    EXPECT_EQ(r.errors, 0u);
    EXPECT_TRUE(r.findings.empty());
}

TEST(SiloLintR4, SuppressedDefaultCaptureIsAllowed)
{
    Result r = lintFixture("r4", {"suppressed.cc"});
    EXPECT_EQ(r.errors, 0u);
    EXPECT_EQ(r.suppressed, 1u);
}

TEST(SiloLintR5, PositiveFindsBadNameAndDuplicate)
{
    Result r = lintFixture("r5", {"positive.cc"});
    EXPECT_EQ(r.errors, 2u);
    bool bad = false, dup = false;
    for (const Finding &f : r.findings) {
        EXPECT_EQ(f.rule, "stats-names");
        if (f.message.find("not a valid silo-stats-v1 key") !=
            std::string::npos)
            bad = true;
        if (f.message.find("duplicate stat name") != std::string::npos)
            dup = true;
    }
    EXPECT_TRUE(bad);
    EXPECT_TRUE(dup);
    expectMatchesGolden(r, "r5_positive");
}

TEST(SiloLintR5, NegativeUniqueValidNamesStayClean)
{
    Result r = lintFixture("r5", {"negative.cc"});
    EXPECT_EQ(r.errors, 0u);
    EXPECT_TRUE(r.findings.empty());
}

TEST(SiloLintR5, SuppressedLegacyNameIsAllowed)
{
    Result r = lintFixture("r5", {"suppressed.cc"});
    EXPECT_EQ(r.errors, 0u);
    EXPECT_EQ(r.suppressed, 1u);
}

TEST(SiloLintS0, SuppressionGrammarIsItselfLinted)
{
    Result r = lintFixture("s0", {"positive.cc"});
    EXPECT_EQ(r.errors, 3u);
    int missing_reason = 0, unknown_rule = 0, unused = 0;
    for (const Finding &f : r.findings) {
        EXPECT_EQ(f.code, "S0");
        if (f.message.find("must carry a reason") != std::string::npos)
            ++missing_reason;
        if (f.message.find("unknown rule") != std::string::npos)
            ++unknown_rule;
        if (f.message.find("unused suppression") != std::string::npos)
            ++unused;
    }
    EXPECT_EQ(missing_reason, 1);
    EXPECT_EQ(unknown_rule, 1);
    EXPECT_EQ(unused, 1);
    expectMatchesGolden(r, "s0_positive");
}

TEST(SiloLintJson, SchemaAndEscaping)
{
    Result r = lintFixture("r1", {"positive.cc"});
    std::string json = toJson(r);
    EXPECT_NE(json.find("\"schema\": \"silo-lint-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
    EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
}

/**
 * The gate: the repository itself must lint clean. Any new finding is
 * either a real determinism/persistency hazard to fix or needs an
 * explicit allow() carrying a reason.
 */
TEST(SiloLintSelfRun, RepositoryHasZeroUnsuppressedFindings)
{
    Options opts;
    opts.root = SILO_REPO_ROOT;
    Result r = runLint(opts);
    EXPECT_GE(r.filesScanned, 100u)
        << "self-run scanned suspiciously few files — wrong root?";
    for (const Finding &f : r.findings) {
        if (!f.suppressed)
            ADD_FAILURE() << f.file << ":" << f.line << " [" << f.code
                          << " " << f.rule << "] " << f.message;
    }
    EXPECT_EQ(r.errors, 0u);
}

} // namespace
} // namespace silo::lint
