/**
 * @file
 * silo-report core tests: the JSON reader must faithfully parse the
 * documents the repo emits, metric extraction must work across the
 * selfperf v1 -> v2 format change, and the regression verdicts must
 * flag a synthetic 1.5x slowdown under default thresholds while
 * passing the committed BENCH_PR4 -> BENCH_PR8 trajectory under the
 * generous CI thresholds. Fixtures live in
 * tests/tools/fixtures/report/; the committed BENCH_*.json files are
 * resolved through SILO_REPO_ROOT so the gate test exercises the real
 * shipping documents.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "silo-report/report.hh"

namespace silo::report
{
namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    EXPECT_TRUE(is.good()) << "cannot read " << path;
    std::ostringstream text;
    text << is.rdbuf();
    return text.str();
}

JsonValue
parseOk(const std::string &text)
{
    JsonValue doc;
    std::string error;
    EXPECT_TRUE(parseJson(text, doc, error)) << error;
    return doc;
}

InputDoc
loadDoc(const std::string &path)
{
    InputDoc doc;
    doc.path = path;
    doc.doc = parseOk(slurp(path));
    return doc;
}

const std::string fixtures =
    std::string(SILO_TEST_DIR) + "/tools/fixtures/report/";
const std::string repoRoot = std::string(SILO_REPO_ROOT) + "/";

// --- JSON reader ---

TEST(ReportJson, ScalarsAndNesting)
{
    JsonValue doc = parseOk(
        R"({"a": 1.5, "b": "x\ny", "c": [1, 2, 3], "d": null,)"
        R"( "e": true, "f": {"g": -2e3}})");
    ASSERT_TRUE(doc.isObject());
    EXPECT_DOUBLE_EQ(doc.numOr("a", 0), 1.5);
    EXPECT_EQ(doc.strOr("b", ""), "x\ny");
    ASSERT_EQ(doc.find("c")->array.size(), 3u);
    EXPECT_DOUBLE_EQ(doc.find("c")->array[1].number, 2);
    EXPECT_TRUE(doc.find("d")->isNull());
    EXPECT_TRUE(doc.find("e")->boolean);
    EXPECT_DOUBLE_EQ(doc.find("f")->numOr("g", 0), -2000);
    EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(ReportJson, PreservesObjectOrder)
{
    JsonValue doc = parseOk(R"({"z": 1, "a": 2, "m": 3})");
    ASSERT_EQ(doc.object.size(), 3u);
    EXPECT_EQ(doc.object[0].first, "z");
    EXPECT_EQ(doc.object[1].first, "a");
    EXPECT_EQ(doc.object[2].first, "m");
}

TEST(ReportJson, RejectsMalformedDocuments)
{
    JsonValue doc;
    std::string error;
    EXPECT_FALSE(parseJson("{\"a\": }", doc, error));
    EXPECT_NE(error.find("line 1"), std::string::npos) << error;
    EXPECT_FALSE(parseJson("{} trailing", doc, error));
    EXPECT_FALSE(parseJson("{\"a\": tru}", doc, error));
    EXPECT_FALSE(parseJson("[1, 2", doc, error));
    EXPECT_FALSE(parseJson("", doc, error));
}

TEST(ReportJson, ParsesCommittedBenchFiles)
{
    JsonValue v1 = parseOk(slurp(repoRoot + "BENCH_PR4.json"));
    EXPECT_EQ(v1.strOr("schema", ""), "silo-selfperf-v1");
    JsonValue v2 = parseOk(slurp(repoRoot + "BENCH_PR8.json"));
    EXPECT_EQ(v2.strOr("schema", ""), "silo-selfperf-v2");
    // v2 additions the report relies on.
    const JsonValue *matrix = v2.find("matrix");
    ASSERT_NE(matrix, nullptr);
    EXPECT_NE(matrix->find("cell_wall_seconds"), nullptr);
    EXPECT_NE(matrix->find("slowest_cell"), nullptr);
}

// --- Metric extraction ---

TEST(ReportMetrics, ExtractsV1AndV2Rates)
{
    auto v1 = selfperfMetrics(
        parseOk(slurp(repoRoot + "BENCH_PR4.json")));
    ASSERT_EQ(v1.size(), 4u);
    EXPECT_EQ(v1[0].first, "matrix cells/s");
    EXPECT_EQ(v1[1].first, "event_queue");
    EXPECT_EQ(v1[2].first, "word_store");
    EXPECT_EQ(v1[3].first, "cache_probe");
    for (const auto &[name, rate] : v1)
        EXPECT_GT(rate, 0) << name;

    auto v2 = selfperfMetrics(
        parseOk(slurp(repoRoot + "BENCH_PR8.json")));
    ASSERT_EQ(v2.size(), 6u);
    EXPECT_EQ(v2[4].first, "recovery_path");
    EXPECT_EQ(v2[5].first, "litmus_compile");
}

// --- Verdicts and the gate ---

TEST(ReportVerdicts, FlagsSynthetic1p5xSlowdown)
{
    // selfperf-slow-1p5x.json is BENCH_PR4 with every rate divided by
    // 1.5: ratio 0.667 < 0.70 must FAIL under default thresholds.
    ReportResult result = buildReport(
        {loadDoc(repoRoot + "BENCH_PR4.json"),
         loadDoc(fixtures + "selfperf-slow-1p5x.json")},
        ReportOptions{});
    EXPECT_TRUE(result.errors.empty());
    EXPECT_EQ(result.worst, Verdict::Fail);
    ASSERT_EQ(result.verdicts.size(), 4u);
    for (const MetricVerdict &mv : result.verdicts) {
        EXPECT_NEAR(mv.ratio, 1.0 / 1.5, 0.01) << mv.metric;
        EXPECT_EQ(mv.verdict, Verdict::Fail) << mv.metric;
    }
    EXPECT_NE(result.markdown.find("FAIL"), std::string::npos);
}

TEST(ReportVerdicts, PassesCommittedTrajectory)
{
    // The shipped BENCH_PR4 -> BENCH_PR8 pair under the generous CI
    // thresholds (cross-machine noise tolerated, order-of-magnitude
    // regressions still caught). This is the same comparison the
    // report_gate ctest and the nightly perf job run.
    ReportOptions opts;
    opts.warn = 0.5;
    opts.fail = 0.8;
    ReportResult result =
        buildReport({loadDoc(repoRoot + "BENCH_PR4.json"),
                     loadDoc(repoRoot + "BENCH_PR8.json")},
                    opts);
    EXPECT_TRUE(result.errors.empty());
    EXPECT_NE(result.worst, Verdict::Fail);
    // Metrics new in v2 have no v1 baseline: trajectory-only, no
    // verdict rows.
    EXPECT_EQ(result.verdicts.size(), 4u);
}

TEST(ReportVerdicts, WarnBandSitsBetweenOkAndFail)
{
    ReportOptions opts; // warn 0.10, fail 0.30
    auto mkdoc = [](double rate) {
        InputDoc doc;
        doc.path = std::to_string(rate);
        doc.doc = parseOk(
            "{\"schema\": \"silo-selfperf-v1\", \"matrix\": "
            "{\"cells_per_second\": " +
            std::to_string(rate) + "}}");
        return doc;
    };
    auto worstOf = [&](double first, double last) {
        return buildReport({mkdoc(first), mkdoc(last)}, opts).worst;
    };
    EXPECT_EQ(worstOf(100, 95), Verdict::Ok);    // 0.95
    EXPECT_EQ(worstOf(100, 80), Verdict::Warn);  // 0.80
    EXPECT_EQ(worstOf(100, 65), Verdict::Fail);  // 0.65
    EXPECT_EQ(worstOf(100, 130), Verdict::Ok);   // speedups pass
}

// --- Profiles ---

TEST(ReportProfiles, RendersHotDomainsAndDelta)
{
    ReportResult result = buildReport({loadDoc(fixtures + "prof-a.json"),
                                       loadDoc(fixtures + "prof-b.json")},
                                      ReportOptions{});
    EXPECT_TRUE(result.errors.empty());
    EXPECT_EQ(result.worst, Verdict::Ok); // profiles never gate
    // Hot-domain tables for both profiles plus the A-vs-B delta.
    EXPECT_NE(result.markdown.find("Host-time profile: prof-a.json"),
              std::string::npos);
    EXPECT_NE(result.markdown.find("Host-time profile: prof-b.json"),
              std::string::npos);
    EXPECT_NE(result.markdown.find("Profile comparison"),
              std::string::npos);
    // mc doubled between the fixtures: the delta column shows 2.00.
    EXPECT_NE(result.markdown.find("| mc | 2.500 | 5.000 | 2.00 |"),
              std::string::npos)
        << result.markdown;
}

TEST(ReportProfiles, RejectsMoreThanTwoProfiles)
{
    InputDoc prof = loadDoc(fixtures + "prof-a.json");
    ReportResult result =
        buildReport({prof, prof, prof}, ReportOptions{});
    ASSERT_EQ(result.errors.size(), 1u);
    EXPECT_NE(result.errors[0].find("at most two"), std::string::npos);
}

TEST(ReportProfiles, RejectsUnknownSchema)
{
    InputDoc doc;
    doc.path = "bogus.json";
    doc.doc = parseOk(R"({"schema": "not-a-perf-doc"})");
    ReportResult result = buildReport({doc}, ReportOptions{});
    ASSERT_EQ(result.errors.size(), 1u);
    EXPECT_NE(result.errors[0].find("unknown schema"),
              std::string::npos);
}

// --- Thresholds ---

TEST(ReportThresholds, ParsesWarnFailPairs)
{
    ReportOptions opts;
    EXPECT_TRUE(parseThresholds("0.1,0.3", opts));
    EXPECT_DOUBLE_EQ(opts.warn, 0.1);
    EXPECT_DOUBLE_EQ(opts.fail, 0.3);
    EXPECT_FALSE(parseThresholds("0.3,0.1", opts)); // fail < warn
    EXPECT_FALSE(parseThresholds("0.1", opts));
    EXPECT_FALSE(parseThresholds("a,b", opts));
    EXPECT_FALSE(parseThresholds("0.1,1.5", opts)); // not a fraction
}

TEST(ReportThresholds, ReadsEnvironmentKnob)
{
    ReportOptions opts;
    std::string error;
    setenv("SILO_PROF_THRESHOLDS", "0.2,0.4", 1);   // NOLINT(concurrency-mt-unsafe)
    EXPECT_TRUE(thresholdsFromEnv(opts, error)) << error;
    EXPECT_DOUBLE_EQ(opts.warn, 0.2);
    EXPECT_DOUBLE_EQ(opts.fail, 0.4);

    setenv("SILO_PROF_THRESHOLDS", "nonsense", 1);   // NOLINT(concurrency-mt-unsafe)
    EXPECT_FALSE(thresholdsFromEnv(opts, error));
    EXPECT_NE(error.find("SILO_PROF_THRESHOLDS"), std::string::npos);

    unsetenv("SILO_PROF_THRESHOLDS");   // NOLINT(concurrency-mt-unsafe)
    ReportOptions defaults;
    EXPECT_TRUE(thresholdsFromEnv(defaults, error));
    EXPECT_DOUBLE_EQ(defaults.warn, 0.10);
    EXPECT_DOUBLE_EQ(defaults.fail, 0.30);
}

} // namespace
} // namespace silo::report
